package cluster

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/units"
)

// Equal weights must reduce weighted deficit round-robin to the classic
// i mod N rotation — the arithmetic the homogeneous byte-identity rests on.
func TestAssignAppsUniformIsModN(t *testing.T) {
	cfg := core.DefaultConfig(core.IntraO3)
	cards := make([]card, 4)
	for i := range cards {
		cards[i] = card{id: i, weight: cfg.CapabilityWeight()}
	}
	shards := assignApps(cards, 10)
	for c, idxs := range shards {
		for k, i := range idxs {
			if want := c + k*len(cards); i != want {
				t.Errorf("card %d slot %d: app %d, want %d (i mod N rotation)", c, k, i, want)
			}
		}
	}
}

// A heavier card must receive proportionally more applications.
func TestAssignAppsWeighted(t *testing.T) {
	cards := []card{{id: 0, weight: 3}, {id: 1, weight: 1}}
	shards := assignApps(cards, 12)
	if len(shards[0]) != 9 || len(shards[1]) != 3 {
		t.Errorf("weighted split %d/%d, want 9/3 for weights 3:1", len(shards[0]), len(shards[1]))
	}
	// Assignment is exhaustive and disjoint.
	seen := map[int]bool{}
	for _, s := range shards {
		for _, i := range s {
			if seen[i] {
				t.Errorf("app %d assigned twice", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 12 {
		t.Errorf("%d apps assigned, want 12", len(seen))
	}
}

// flatten dedupes identical skews into one class and derives one config per
// class, preserving switch-major card order.
func TestFlattenClasses(t *testing.T) {
	base := core.DefaultConfig(core.IntraO3)
	topo := Topology{Switches: []Switch{
		{Cards: []core.CardSkew{{}, presetSkew}},
		{Cards: []core.CardSkew{presetSkew, {}}},
	}}
	cards, classCfgs, err := flatten(topo, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(cards) != 4 || len(classCfgs) != 2 {
		t.Fatalf("%d cards, %d classes; want 4 cards, 2 classes", len(cards), len(classCfgs))
	}
	if cards[0].class != 0 || cards[1].class != 1 || cards[2].class != 1 || cards[3].class != 0 {
		t.Errorf("classes %d,%d,%d,%d; want 0,1,1,0",
			cards[0].class, cards[1].class, cards[2].class, cards[3].class)
	}
	for i, c := range cards {
		if c.id != i {
			t.Errorf("card %d has id %d", i, c.id)
		}
		if c.sw != i/2 {
			t.Errorf("card %d on switch %d, want %d", i, c.sw, i/2)
		}
	}
	if full, skew := classCfgs[0].CapabilityWeight(), classCfgs[1].CapabilityWeight(); skew >= full {
		t.Errorf("skewed capability %v not below full card %v", skew, full)
	}
	if classCfgs[1].Flash.Channels != 2 || classCfgs[1].LWPs != 6 {
		t.Errorf("skewed class config not derived: %d channels, %d LWPs",
			classCfgs[1].Flash.Channels, classCfgs[1].LWPs)
	}
}

// The multi-switch fabric routes a dispatch through the root uplink and the
// owning switch; a congested switch delays only its own subtree.
func TestFabricCongestionIsPerSwitch(t *testing.T) {
	topo := Topology{Switches: []Switch{
		{Name: "fast", BW: 8 * units.GBps},
		{Name: "slow", BW: 1 * units.MBps},
	}}
	f := newFabric(topo, DefaultHost(), true, nil)
	const nb = 1 * units.MB
	slow1 := f.dispatch(0, 1, nb)
	slow2 := f.dispatch(slow1/2, 1, nb) // queues behind slow1 on "slow"
	fast := f.dispatch(slow1, 0, nb)    // later request, other subtree
	if slow2 <= slow1 {
		t.Errorf("second slow-switch dispatch %v not behind first %v", slow2, slow1)
	}
	if fast >= slow2 {
		t.Errorf("fast-switch dispatch %v stuck behind slow switch %v", fast, slow2)
	}
}

func TestPresetShapes(t *testing.T) {
	for _, name := range PresetNames {
		topo, err := Preset(name, 8)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if topo.Cards() != 8 {
			t.Errorf("%s: %d cards, want 8", name, topo.Cards())
		}
		if err := topo.Validate(core.DefaultConfig(core.IntraO3)); err != nil {
			t.Errorf("%s: preset does not validate: %v", name, err)
		}
		if s := topo.String(); s == "" || s == "uniform" {
			t.Errorf("%s: shape string %q", name, s)
		}
	}
	if _, err := Preset("sym", 3); err == nil {
		t.Error("odd card count accepted")
	}
	if _, err := Preset("sym", 0); err == nil {
		t.Error("zero card count accepted")
	}
	if _, err := Preset("nope", 4); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("unknown preset error %v does not name the preset", err)
	}
}

func TestTopologyValidate(t *testing.T) {
	base := core.DefaultConfig(core.IntraO3)
	cases := []struct {
		name string
		topo Topology
		want string // error substring; "" means valid
	}{
		{"zero is valid", Topology{}, ""},
		{"uniform is valid", Uniform(4), ""},
		{"empty switch", Topology{Switches: []Switch{
			{Cards: make([]core.CardSkew, 1)}, {},
		}}, "no cards"},
		{"negative bw", Topology{Switches: []Switch{{BW: -1, Cards: make([]core.CardSkew, 1)}}}, "negative bandwidth"},
		{"negative latency", Topology{Switches: []Switch{{DispatchLatency: -1, Cards: make([]core.CardSkew, 1)}}}, "negative dispatch latency"},
		{"duplicate names", Topology{Switches: []Switch{
			{Name: "x", Cards: make([]core.CardSkew, 1)},
			{Name: "x", Cards: make([]core.CardSkew, 1)},
		}}, "duplicate switch name"},
		{"too many cards", Uniform(core.MaxDevices + 1), "cards"},
		{"bad skew", Topology{Switches: []Switch{
			{Cards: []core.CardSkew{{Channels: 3}}},
		}}, "power of two"},
	}
	for _, tc := range cases {
		err := tc.topo.Validate(base)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}
