// Command abacusd serves the paper's experiments over HTTP/JSON: a
// simulation-as-a-service daemon in front of the same renderers the
// abacus-repro CLI uses, so a job's result bytes are exactly what the
// CLI prints for the same knobs.
//
// Usage:
//
//	abacusd [-addr :8080] [-workers N] [-sim-workers N] [-queue N]
//	        [-timeout D] [-max-timeout D] [-retain N] [-image-store DIR]
//	        [-journal DIR] [-watchdog-grace D] [-chaos SPEC]
//
// workers bounds how many jobs execute concurrently; sim-workers bounds
// each job's internal device-simulation parallelism. queue bounds the
// admitted backlog across all clients — beyond it, submissions are shed
// with 429 — and dispatch is round-robin across clients, so one noisy
// client cannot starve the rest. timeout/-max-timeout bound job
// execution server-side. -image-store persists device images so repeat
// jobs (and restarts) skip the build lifecycle.
//
// -journal makes job lifecycle durable: accepts, dispatches, and
// terminal states (with result bytes) land in an append-only CRC-framed
// journal under DIR, and a restarted daemon replays it — finished jobs
// stay queryable with their exact bytes, jobs that were accepted or
// running at crash time run again. -watchdog-grace bounds how long a
// render may ignore its cancelled context before the stuck-job
// watchdog abandons it. -chaos injects deterministic faults
// (kill-after=N, torn-tail, panic=EXPERIMENT, journal-fail-after=N,
// journal-slow=DUR, seed=N) for the crash-recovery harness.
//
// A SIGINT/SIGTERM drains cleanly: queued and running jobs finalize as
// cancelled, streaming clients see their trailers, then the listener
// closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	flashabacus "repro"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "max concurrently executing jobs")
	simWorkers := flag.Int("sim-workers", runtime.GOMAXPROCS(0), "max concurrent device simulations within one job")
	queue := flag.Int("queue", 64, "max admitted-but-not-running jobs before submissions shed with 429")
	timeout := flag.Duration("timeout", 2*time.Minute, "default per-job execution deadline")
	maxTimeout := flag.Duration("max-timeout", 10*time.Minute, "upper bound on client-requested job deadlines")
	retain := flag.Int("retain", 256, "finished jobs kept queryable")
	imageStore := flag.String("image-store", "", "persist device images under this directory")
	journalDir := flag.String("journal", "", "journal job lifecycle under this directory and replay it at boot")
	watchdogGrace := flag.Duration("watchdog-grace", 10*time.Second, "how long a render may ignore cancellation before the watchdog abandons it")
	chaosSpec := flag.String("chaos", "", "deterministic fault plan for crash testing, e.g. kill-after=8,torn-tail,seed=1")
	flag.Parse()

	cfg := flashabacus.ServiceConfig{
		Workers: *workers, SimWorkers: *simWorkers, QueueDepth: *queue,
		DefaultTimeout: *timeout, MaxTimeout: *maxTimeout, RetainJobs: *retain,
		WatchdogGrace: *watchdogGrace,
	}
	if *imageStore != "" {
		st, err := flashabacus.OpenImageStore(*imageStore, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "abacusd:", err)
			os.Exit(1)
		}
		cfg.Store = st
	}
	var jl *flashabacus.Journal
	if *journalDir != "" {
		var err error
		if jl, err = flashabacus.OpenJournal(*journalDir); err != nil {
			fmt.Fprintln(os.Stderr, "abacusd:", err)
			os.Exit(1)
		}
		cfg.Journal = jl
	}
	if *chaosSpec != "" {
		chaos, err := flashabacus.ParseServiceChaos(*chaosSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "abacusd:", err)
			os.Exit(1)
		}
		cfg.Chaos = chaos
		log.Printf("abacusd: chaos plan armed: %s", *chaosSpec)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("abacusd: listening on %s (workers %d, sim-workers %d, queue %d)",
		*addr, *workers, *simWorkers, *queue)
	if err := flashabacus.Serve(ctx, *addr, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "abacusd:", err)
		os.Exit(1)
	}
	// Serve drained the workers; flush outstanding image-store fills so
	// the next process finds every image this one built.
	flashabacus.FlushImageStore()
	if jl != nil {
		jl.Close()
	}
	log.Printf("abacusd: drained")
}
