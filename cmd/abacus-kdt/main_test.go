package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseFlags(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.build != "" || o.out != "" || o.dump != "" || o.scale != 16 {
		t.Errorf("unexpected defaults: %+v", o)
	}

	o, err = parseFlags([]string{"-build", "ATAX", "-out", "x.kdt", "-scale", "128"})
	if err != nil {
		t.Fatal(err)
	}
	if o.build != "ATAX" || o.out != "x.kdt" || o.scale != 128 {
		t.Errorf("unexpected parse: %+v", o)
	}

	if _, err := parseFlags([]string{"-no-such-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

// Build a table, then dump it back: the round trip exercises encode, file
// IO, decode, and the printer.
func TestBuildThenDump(t *testing.T) {
	out := filepath.Join(t.TempDir(), "atax.kdt")
	if err := run("ATAX", out, "", 512); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) == 0 {
		t.Fatal("empty table written")
	}

	stdout := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	dumpErr := run("", "", out, 512)
	w.Close()
	os.Stdout = stdout
	if dumpErr != nil {
		t.Fatal(dumpErr)
	}
	printed := make([]byte, 1<<16)
	n, _ := r.Read(printed)
	for _, want := range []string{"kernel", "microblock", "READ"} {
		if !strings.Contains(string(printed[:n]), want) {
			t.Errorf("dump output lacks %q", want)
		}
	}
}

func TestRunRejects(t *testing.T) {
	if err := run("", "", "", 16); err == nil {
		t.Error("no action accepted")
	}
	if err := run("NOPE", filepath.Join(t.TempDir(), "x.kdt"), "", 16); err == nil {
		t.Error("unknown application accepted")
	}
	if err := run("", "", filepath.Join(t.TempDir(), "missing.kdt"), 16); err == nil {
		t.Error("missing dump file accepted")
	}
}
