// Heterogeneous: run mix MX1 (four data-intensive apps plus two
// compute-intensive ones, 24 kernel instances) across all five systems and
// show how out-of-order intra-kernel scheduling shortens the stagger
// kernels (paper Fig. 10b and Fig. 12b).
package main

import (
	"context"
	"fmt"
	"log"

	flashabacus "repro"
)

func main() {
	fmt.Println("== MX1: 6 applications x 4 kernel instances ==")
	for _, sys := range flashabacus.Systems {
		bundle, err := flashabacus.Mix(1, 32)
		if err != nil {
			log.Fatal(err)
		}
		r, err := flashabacus.Run(context.Background(), sys, bundle)
		if err != nil {
			log.Fatal(err)
		}
		mn, av, mx := r.LatencyStats()
		fmt.Printf("  %-8s %8.1f MB/s  latency min/avg/max %6.1f/%6.1f/%6.1f ms  conflicts %d\n",
			sys, r.ThroughputMBps(),
			float64(mn)/1e6, float64(av)/1e6, float64(mx)/1e6, r.LockConflicts)
	}
}
