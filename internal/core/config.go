// Package core assembles the FlashAbacus accelerator: eight LWPs, the
// two-tier crossbar network, DDR3L and scratchpad, the PCIe host link, the
// FPGA flash-controller complex, Flashvisor, and Storengine — and executes
// offloaded kernel description tables under one of the five execution
// governors the paper evaluates.
package core

import (
	"fmt"

	"repro/internal/flash"
	"repro/internal/flashctrl"
	"repro/internal/flashvisor"
	"repro/internal/host"
	"repro/internal/lwp"
	"repro/internal/noc"
	"repro/internal/pcie"
	"repro/internal/power"
	"repro/internal/storengine"
	"repro/internal/units"
)

// System selects the accelerated-system configuration (§5 "Accelerators").
type System int

// The five evaluated systems.
const (
	SIMD System = iota
	InterSt
	InterDy
	IntraIo
	IntraO3
)

// Systems lists all five in the paper's presentation order.
var Systems = []System{SIMD, InterSt, InterDy, IntraIo, IntraO3}

// FlashAbacusSystems lists the four self-governing configurations.
var FlashAbacusSystems = []System{InterSt, InterDy, IntraIo, IntraO3}

func (s System) String() string {
	switch s {
	case SIMD:
		return "SIMD"
	case InterSt:
		return "InterSt"
	case InterDy:
		return "InterDy"
	case IntraIo:
		return "IntraIo"
	case IntraO3:
		return "IntraO3"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// IsFlashAbacus reports whether the system integrates the flash backbone
// (everything but the SIMD baseline).
func (s System) IsFlashAbacus() bool { return s != SIMD }

// Config describes one device build. DefaultConfig returns Table 1 values;
// every knob exists so ablations can deviate explicitly.
type Config struct {
	System System

	// Devices is the cluster topology knob: how many identical cards a
	// host-level cluster run shards a workload across (internal/cluster).
	// 0 and 1 both mean a single device; the device model itself ignores
	// the field — it only shapes the dispatch layer above it.
	Devices int

	// LWPs is the total core count (8). Workers is the compute-core
	// subset; 0 selects the paper's split automatically: all cores for
	// SIMD, LWPs-2 for FlashAbacus (one each for Flashvisor/Storengine).
	LWPs    int
	Workers int

	CostModel lwp.CostModel
	// WakeLatency is the PSC revocation time; SleepAfter is the idle gap
	// after which a worker is put back to sleep.
	WakeLatency units.Duration
	SleepAfter  units.Duration
	// DispatchOverhead is the Flashvisor-to-worker IPC cost paid when a
	// kernel's next screen lands on a different LWP than its predecessor
	// (the overhead §5.1 blames for IntraO3 trailing InterDy).
	DispatchOverhead units.Duration

	Flash       flash.Geometry
	FlashTiming flash.Timing
	Ctrl        flashctrl.Config
	Visor       flashvisor.Config
	Storengine  storengine.Config
	Noc         noc.Config
	PCIe        pcie.Config
	Host        host.Config
	Rates       power.Rates

	// ScratchpadBytes overrides the scratchpad capacity (0 selects the
	// prototype's 4 MB). Heterogeneous cluster topologies scale it per
	// card; the Flashvisor mapping table must still fit.
	ScratchpadBytes int64

	// Functional stores real page payloads and runs EXEC builtins; leave
	// it off for the paper-scale timing sweeps.
	Functional bool
	// NoOverlap disables the DDR3L double-buffering that overlaps flash
	// streaming with compute (ablation; the SIMD baseline never overlaps).
	NoOverlap bool
	// CollectSeries enables the Fig. 15 time-series instrumentation.
	CollectSeries bool
	SeriesBin     units.Duration
}

// DefaultConfig returns the prototype configuration for a system.
func DefaultConfig(sys System) Config {
	return Config{
		System:           sys,
		LWPs:             8,
		CostModel:        lwp.DefaultCostModel(),
		WakeLatency:      5 * units.Microsecond,
		SleepAfter:       100 * units.Microsecond,
		DispatchOverhead: 3 * units.Microsecond,
		Flash:            flash.DefaultGeometry(),
		FlashTiming:      flash.DefaultTiming(),
		Ctrl:             flashctrl.DefaultConfig(),
		Visor:            flashvisor.DefaultConfig(),
		Storengine:       storengine.DefaultConfig(),
		Noc:              noc.DefaultConfig(),
		PCIe:             pcie.DefaultConfig(),
		Host:             host.DefaultConfig(),
		Rates:            power.DefaultRates(),
		SeriesBin:        100 * units.Microsecond,
	}
}

// workerCount resolves the Workers default.
func (c Config) workerCount() int {
	if c.Workers > 0 {
		return c.Workers
	}
	if c.System == SIMD {
		return c.LWPs
	}
	return c.LWPs - 2
}

// WorkerCount returns the resolved compute-core count — the Workers knob,
// or the paper's split when Workers is 0. Cluster dispatchers weight cards
// by it.
func (c Config) WorkerCount() int { return c.workerCount() }

// CapabilityWeight scores a card's relative capability for capability-
// weighted dispatch: compute parallelism (resolved worker count) times
// flash-side parallelism (channel count). Identical cards score equally,
// so homogeneous topologies reduce to unweighted dispatch.
func (c Config) CapabilityWeight() float64 {
	return float64(c.workerCount()) * float64(c.Flash.Channels)
}

// CardSkew describes one card's deviation from a base device Config in a
// heterogeneous cluster topology. Zero fields inherit the base value; set
// fields override it. The skewable knobs are the geometry dimensions the
// paper's self-governing argument cares about: flash parallelism, erase-
// unit size, core count, and mapping-table headroom.
type CardSkew struct {
	Channels        int   // flash channel count (power of two)
	PagesPerBlock   int   // pages per block, i.e. superblock size (power of two)
	LWPs            int   // total core count
	ScratchpadBytes int64 // scratchpad capacity (power of two)
}

// IsZero reports whether the skew inherits every base value.
func (k CardSkew) IsZero() bool { return k == CardSkew{} }

func pow2(n int64) bool { return n > 0 && n&(n-1) == 0 }

// Validate reports a skew error, or nil. Overrides must be positive powers
// of two (the FTL's shift/mask hot paths and the page-group layout assume
// pow2 channel and page counts); zero means inherit.
func (k CardSkew) Validate() error {
	if k.Channels != 0 && !pow2(int64(k.Channels)) {
		return fmt.Errorf("core: skew channels %d not a positive power of two", k.Channels)
	}
	if k.PagesPerBlock != 0 && !pow2(int64(k.PagesPerBlock)) {
		return fmt.Errorf("core: skew pages-per-block %d not a positive power of two", k.PagesPerBlock)
	}
	if k.LWPs < 0 {
		return fmt.Errorf("core: skew LWPs %d negative", k.LWPs)
	}
	if k.ScratchpadBytes != 0 && !pow2(k.ScratchpadBytes) {
		return fmt.Errorf("core: skew scratchpad %d bytes not a positive power of two", k.ScratchpadBytes)
	}
	return nil
}

// Derive specializes a base card configuration to one skewed card and
// validates the result, so a topology of heterogeneous cards is expressed
// as one base Config plus per-card deltas. The derived config is a single
// card: Devices is cleared, and Workers is re-resolved from the (possibly
// skewed) LWP count rather than inherited.
func (c Config) Derive(k CardSkew) (Config, error) {
	if err := k.Validate(); err != nil {
		return Config{}, err
	}
	d := c
	d.Devices = 0
	if k.Channels != 0 {
		d.Flash.Channels = k.Channels
	}
	if k.PagesPerBlock != 0 {
		d.Flash.PagesPerBlock = k.PagesPerBlock
	}
	if k.LWPs != 0 {
		d.LWPs = k.LWPs
		d.Workers = 0 // re-resolve the paper's split for the new core count
	}
	if k.ScratchpadBytes != 0 {
		d.ScratchpadBytes = k.ScratchpadBytes
	}
	if err := d.Validate(); err != nil {
		return Config{}, fmt.Errorf("core: derived card config: %w", err)
	}
	return d, nil
}

// MaxDevices bounds the cluster topology knob: enough cards for every
// scaling study the evaluation runs while keeping a single host switch
// plausible.
const MaxDevices = 64

// Validate reports a configuration error, or nil.
func (c Config) Validate() error {
	if c.Devices < 0 || c.Devices > MaxDevices {
		return fmt.Errorf("core: %d devices outside [0,%d]", c.Devices, MaxDevices)
	}
	if c.LWPs < 1 {
		return fmt.Errorf("core: %d LWPs", c.LWPs)
	}
	w := c.workerCount()
	if w < 1 || w > c.LWPs {
		return fmt.Errorf("core: %d workers outside [1,%d]", w, c.LWPs)
	}
	if c.System.IsFlashAbacus() && c.Workers == 0 && c.LWPs < 3 {
		return fmt.Errorf("core: FlashAbacus needs at least 3 LWPs (workers + Flashvisor + Storengine)")
	}
	if err := c.CostModel.Validate(); err != nil {
		return err
	}
	if err := c.Flash.Validate(); err != nil {
		return err
	}
	if c.ScratchpadBytes < 0 {
		return fmt.Errorf("core: negative scratchpad size %d", c.ScratchpadBytes)
	}
	if c.CollectSeries && c.SeriesBin <= 0 {
		return fmt.Errorf("core: series collection needs a positive bin")
	}
	return c.Host.Validate()
}
