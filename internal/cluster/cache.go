// Image and probe caching for the cluster layer.
//
// Building a card is a three-step lifecycle — format the FTL, populate the
// input ranges, offload the kernel tables — and before this cache every
// suite cell, cluster card, and work-steal probe walked it from scratch.
// The cache captures the lifecycle's result once per distinct
// (core.BuildKey, bundle) pair as an immutable core.Image and hands out
// copy-on-write forks, and it memoizes work-steal probe runs — a full
// standalone device simulation per (card class, kernel instance) — across
// every dispatch that shares the class and bundle. Both layers are
// single-flight: concurrent requesters for the same key share one build.
package cluster

import (
	"context"
	"errors"
	"sync"

	"repro/internal/core"
	"repro/internal/imagestore"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/workload"
)

// imageStage distinguishes the two capture points an image can be taken at.
type imageStage int

const (
	// stagePopulated: formatted + populated, nothing offloaded. Cluster
	// cards and probes fork this and offload their own app subsets.
	stagePopulated imageStage = iota
	// stageOffloaded: populated + the bundle's full app set offloaded. The
	// single-device run path forks this and goes straight to Run.
	stageOffloaded
)

// imageKey identifies one cached image: the configuration fields that shape
// populated device state, the bundle's content key, and the capture stage.
type imageKey struct {
	build  core.BuildKey
	bundle string
	stage  imageStage
}

// probeKey identifies one memoized work-steal probe: the full card
// configuration (a probe is a complete simulation, so every knob matters),
// the bundle, and the kernel instance.
type probeKey struct {
	cfg    core.Config
	bundle string
	inst   string
}

// Cache bounds: generous enough that a full evaluation suite (every
// bundle × both capture stages × both storage classes, plus every probe
// of the cluster and topology sweeps) never evicts, small enough that a
// long-lived process feeding arbitrary bundles through the shared public
// cache stays bounded. Eviction is oldest-insertion-first.
const (
	maxCachedImages = 512
	maxCachedProbes = 8192
)

// ImageCache shares device images and work-steal probe results across runs.
// A nil *ImageCache is valid and disables all caching; the zero value is
// ready to use. Safe for concurrent use.
//
// With SetStore, the cache gains a second, persistent level: an image miss
// consults the store before building (a decoded blob is as good as a
// build), and a fresh build is encoded and written back asynchronously —
// the requester never waits on store I/O it does not benefit from. Corrupt
// or stale store entries are treated as misses; the single-flight
// discipline spans both levels, so concurrent requesters for one key share
// one load-or-build regardless of where it is satisfied from.
type ImageCache struct {
	mu     sync.Mutex
	images boundedCache[imageKey, *core.Image]
	probes boundedCache[probeKey, *stats.Result]

	store   imagestore.Store
	storeWG sync.WaitGroup
	stStats struct{ hits, misses, puts, errors int64 }

	// stFails counts consecutive store I/O failures; at storeFailLimit
	// the store is demoted (stDown) and the cache runs cache-only — a
	// sick store must not keep charging every miss an error round-trip.
	stFails int
	stDown  bool
}

// CacheStats is a point-in-time snapshot of cache behavior, per level.
// Store fills (Puts) are asynchronous, so read them after FlushStore when
// exactness matters.
type CacheStats struct {
	ImageHits, ImageMisses, ImageEvictions int64
	ProbeHits, ProbeMisses, ProbeEvictions int64
	StoreHits, StoreMisses                 int64 // persistent level, when attached
	StorePuts, StoreErrors                 int64 // async fills; decode/encode/IO failures

	// StoreDegraded reports the persistent level was demoted after
	// storeFailLimit consecutive I/O failures: the cache keeps running
	// memory-only until SetStore re-attaches a store.
	StoreDegraded bool
}

// Stats returns current counters. Nil-safe, like every read path.
func (c *ImageCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		ImageHits: c.images.hits, ImageMisses: c.images.misses, ImageEvictions: c.images.evictions,
		ProbeHits: c.probes.hits, ProbeMisses: c.probes.misses, ProbeEvictions: c.probes.evictions,
		StoreHits: c.stStats.hits, StoreMisses: c.stStats.misses,
		StorePuts: c.stStats.puts, StoreErrors: c.stStats.errors,
		StoreDegraded: c.stDown,
	}
}

// SetStore attaches (or, with nil, detaches) the persistent second level.
// Call it before handing the cache out; it does not retro-fill. Attaching
// clears a previous degradation, so a fresh (or repaired) store starts
// with a clean failure budget.
func (c *ImageCache) SetStore(st imagestore.Store) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store = st
	c.stFails = 0
	c.stDown = false
}

// FlushStore blocks until every asynchronous store fill issued so far has
// completed — the boundary a process must cross before its store is
// guaranteed warm for the next process.
func (c *ImageCache) FlushStore() {
	if c == nil {
		return
	}
	c.storeWG.Wait()
}

// boundedCache is a size-bounded single-flight map: entries and their
// insertion order, evicted oldest-first past the limit. Both caches of an
// ImageCache share one discipline (and one mutex, held by runner.Await).
// The counters are guarded by that same mutex: a hit is a get that found a
// flight (finished or shared in-flight), a miss is an insertion.
type boundedCache[K comparable, V any] struct {
	entries map[K]*runner.Flight[V]
	order   []K

	hits, misses, evictions int64
}

// await runs the single-flight protocol for key over this cache with the
// given capacity. It must be called with the ImageCache's mutex free; mu
// guards every access to the cache's maps.
func (bc *boundedCache[K, V]) await(ctx context.Context, mu *sync.Mutex, key K, limit int,
	compute func(context.Context) (V, error)) (V, error) {
	// mine is the flight this await inserted: its cancellation eviction
	// (set(nil)) must not clobber a newer flight another goroutine cached
	// under the same key after capacity eviction removed mine.
	var mine *runner.Flight[V]
	return runner.Await(ctx, mu,
		func() *runner.Flight[V] {
			f := bc.entries[key]
			if f != nil && f != mine {
				bc.hits++
			}
			return f
		},
		func(f *runner.Flight[V]) {
			if f == nil {
				if bc.entries[key] != mine {
					return
				}
				delete(bc.entries, key)
				bc.order = dropKey(bc.order, key)
				return
			}
			mine = f
			bc.misses++
			if bc.entries == nil {
				bc.entries = map[K]*runner.Flight[V]{}
			}
			// Await inserts only into an empty slot (checked under this
			// same lock), and eviction keeps order and entries in sync, so
			// key is never already present: plain append stays
			// duplicate-free.
			bc.entries[key] = f
			bc.order = append(bc.order, key)
			bc.evict(limit, key)
		},
		compute)
}

// evict enforces the capacity bound, oldest-insertion-first, skipping the
// just-inserted key and any flight still being computed: evicting an
// in-flight entry would break single-flight — its waiters keep waiting on
// the orphaned flight while a new requester starts a duplicate build — so
// the cache instead exceeds its bound transiently while more than limit
// builds are in the air.
func (bc *boundedCache[K, V]) evict(limit int, keep K) {
	for len(bc.entries) > limit {
		victim := -1
		for i, k := range bc.order {
			if k == keep || !bc.entries[k].Done() {
				continue
			}
			victim = i
			break
		}
		if victim < 0 {
			return // everything evictable is in flight; retry on next insert
		}
		delete(bc.entries, bc.order[victim])
		bc.order = append(bc.order[:victim], bc.order[victim+1:]...)
		bc.evictions++
	}
}

// dropKey removes the first occurrence of key from an insertion-order
// list. It runs only on cancellation eviction (set(nil)), keeping the
// order list in sync with the map so capacity eviction (oldest first) can
// never drop a key that was re-inserted more recently, and
// cancellation-evicted keys do not linger.
func dropKey[K comparable](order []K, key K) []K {
	for i, k := range order {
		if k == key {
			return append(order[:i], order[i+1:]...)
		}
	}
	return order
}

// NewImageCache returns an empty cache.
func NewImageCache() *ImageCache { return &ImageCache{} }

// bundleID returns the bundle's cache identity, or "" when the bundle
// carries no content key (hand-assembled): such bundles are never cached,
// because nothing ties their pointer to their content across calls.
func bundleID(b *workload.Bundle) string { return b.Key }

// Populated returns the image of a card formatted and populated for bundle
// b under cfg, building it on first request. Configurations that differ
// only in run-time knobs (governor within the same storage class, worker
// count, series collection, ...) share one image; see core.BuildKey.
func (c *ImageCache) Populated(ctx context.Context, cfg core.Config, b *workload.Bundle) (*core.Image, error) {
	return c.image(ctx, cfg, b, stagePopulated)
}

// Offloaded returns the image of a card formatted, populated, and loaded
// with the bundle's full application set — the single-device fast path.
func (c *ImageCache) Offloaded(ctx context.Context, cfg core.Config, b *workload.Bundle) (*core.Image, error) {
	return c.image(ctx, cfg, b, stageOffloaded)
}

func (c *ImageCache) image(ctx context.Context, cfg core.Config, b *workload.Bundle, stage imageStage) (*core.Image, error) {
	id := bundleID(b)
	if c == nil || id == "" {
		return buildImage(ctx, c, cfg, b, stage)
	}
	key := imageKey{build: cfg.BuildKey(), bundle: id, stage: stage}
	return c.images.await(ctx, &c.mu, key, maxCachedImages,
		func(ctx context.Context) (*core.Image, error) { return c.loadOrBuild(ctx, key, cfg, b, stage) })
}

// stageName names a capture stage inside the store fingerprint.
func (s imageStage) stageName() string {
	if s == stageOffloaded {
		return "offloaded"
	}
	return "populated"
}

// loadOrBuild is the memory-level miss path: consult the persistent store
// first, fall back to the build lifecycle, and fill the store with what the
// lifecycle produced. It runs inside the key's single flight, so at most
// one goroutine per key is in here.
func (c *ImageCache) loadOrBuild(ctx context.Context, key imageKey, cfg core.Config, b *workload.Bundle, stage imageStage) (*core.Image, error) {
	st := c.activeStore()
	if st == nil {
		return buildImage(ctx, c, cfg, b, stage)
	}
	fp := imagestore.Fingerprint(key.build, key.bundle, stage.stageName())
	if blob, err := st.Get(fp); err == nil {
		img, derr := imagestore.Decode(cfg, blob)
		if derr == nil {
			c.storeOK()
			c.countStore(func(s *storeCounters) { s.hits++ })
			return img, nil
		}
		// Corrupt, truncated, or stale-version blob: a fresh build both
		// recovers and overwrites the bad entry. Bad bytes, not a sick
		// store, so this does not charge the degradation budget.
		c.countStore(func(s *storeCounters) { s.errors++ })
	} else if errors.Is(err, imagestore.ErrNotFound) {
		c.storeOK()
		c.countStore(func(s *storeCounters) { s.misses++ })
	} else {
		c.storeFailure()
	}
	img, err := buildImage(ctx, c, cfg, b, stage)
	if err != nil {
		return nil, err
	}
	// Fill asynchronously: encode+write costs the next process a rebuild if
	// skipped, but costs this requester latency if awaited. The goroutine
	// holds no context — a cancelled run's fills still land (the work is
	// bounded), and FlushStore drains them before the process exits.
	c.storeWG.Add(1)
	go func() {
		defer c.storeWG.Done()
		blob, err := imagestore.Encode(img)
		if err != nil {
			c.countStore(func(s *storeCounters) { s.errors++ })
			return
		}
		if err := st.Put(fp, blob); err != nil {
			c.storeFailure()
			return
		}
		c.storeOK()
		c.countStore(func(s *storeCounters) { s.puts++ })
	}()
	return img, nil
}

// activeStore returns the attached store, or nil when none is attached
// or the store has been demoted to cache-only.
func (c *ImageCache) activeStore() imagestore.Store {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stDown {
		return nil
	}
	return c.store
}

// storeFailure charges one store I/O failure against the degradation
// budget; the storeFailLimit'th consecutive failure demotes the store.
func (c *ImageCache) storeFailure() {
	c.mu.Lock()
	c.stStats.errors++
	c.stFails++
	if c.stFails >= storeFailLimit {
		c.stDown = true
	}
	c.mu.Unlock()
}

// storeOK resets the consecutive-failure budget after any successful
// store round-trip (hit, clean miss, or landed fill).
func (c *ImageCache) storeOK() {
	c.mu.Lock()
	c.stFails = 0
	c.mu.Unlock()
}

// storeFailLimit is the consecutive store I/O failures tolerated before
// the persistent level is demoted and the cache degrades to memory-only.
const storeFailLimit = 3

// storeCounters aliases the anonymous counter struct for countStore.
type storeCounters = struct{ hits, misses, puts, errors int64 }

func (c *ImageCache) countStore(f func(*storeCounters)) {
	c.mu.Lock()
	f(&c.stStats)
	c.mu.Unlock()
}

// buildImage walks the capture lifecycle once. The offloaded stage builds
// on the populated stage's image — forking it, offloading the full app set,
// and re-snapshotting — so the two stages share mapping-table segments.
func buildImage(ctx context.Context, c *ImageCache, cfg core.Config, b *workload.Bundle, stage imageStage) (*core.Image, error) {
	var n *Node
	if stage == stageOffloaded {
		pop, err := c.Populated(ctx, cfg, b)
		if err != nil {
			return nil, err
		}
		d, err := pop.Fork(cfg)
		if err != nil {
			return nil, err
		}
		n = &Node{dev: d}
		if err := n.Offload(b.Apps); err != nil {
			return nil, err
		}
	} else {
		var err error
		if n, err = NewNode(0, cfg); err != nil {
			return nil, err
		}
		if err := n.Populate(b.Populate); err != nil {
			return nil, err
		}
	}
	return n.Device().Snapshot()
}

// Probe returns the memoized standalone-instance probe run for (cfg, b,
// inst), computing it via run on first request. Probe results feed only
// the work-steal claim loop, which reads makespans; the simulation is
// deterministic, so a memoized result is identical to a recomputed one.
func (c *ImageCache) Probe(ctx context.Context, cfg core.Config, b *workload.Bundle, inst string,
	run func(context.Context) (*stats.Result, error)) (*stats.Result, error) {
	id := bundleID(b)
	if c == nil || id == "" {
		return run(ctx)
	}
	key := probeKey{cfg: cfg, bundle: id, inst: inst}
	return c.probes.await(ctx, &c.mu, key, maxCachedProbes, run)
}
