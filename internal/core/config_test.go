package core

import (
	"strings"
	"testing"

	"repro/internal/units"
)

// Table-driven bounds for the base configuration: every rejection names
// what was wrong, every accepted tweak stays accepted.
func TestConfigValidateTable(t *testing.T) {
	cases := []struct {
		name  string
		tweak func(*Config)
		want  string // error substring; "" means valid
	}{
		{"default", func(*Config) {}, ""},
		{"devices at cap", func(c *Config) { c.Devices = MaxDevices }, ""},
		{"devices beyond cap", func(c *Config) { c.Devices = MaxDevices + 1 }, "devices outside"},
		{"negative devices", func(c *Config) { c.Devices = -1 }, "devices outside"},
		{"zero LWPs", func(c *Config) { c.LWPs = 0 }, "LWPs"},
		{"workers beyond LWPs", func(c *Config) { c.Workers = 99 }, "workers outside"},
		{"flashabacus two LWPs", func(c *Config) { c.LWPs = 2 }, "workers outside"},
		{"zero flash channels", func(c *Config) { c.Flash.Channels = 0 }, "geometry"},
		{"negative page size", func(c *Config) { c.Flash.PageSize = -1 }, "page organization"},
		{"meta pages overflow", func(c *Config) { c.Flash.MetaPages = c.Flash.PagesPerBlock }, "metadata pages"},
		{"negative scratchpad", func(c *Config) { c.ScratchpadBytes = -4 }, "negative scratchpad"},
		{"explicit scratchpad", func(c *Config) { c.ScratchpadBytes = 8 * units.MB }, ""},
		{"series without bin", func(c *Config) { c.CollectSeries = true; c.SeriesBin = 0 }, "positive bin"},
	}
	for _, tc := range cases {
		cfg := DefaultConfig(IntraO3)
		tc.tweak(&cfg)
		err := cfg.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// Table-driven per-card derivation: skews override only what they name,
// non-pow2 and degenerate skews are rejected with messages naming the knob.
func TestConfigDeriveTable(t *testing.T) {
	cases := []struct {
		name string
		skew CardSkew
		want string // error substring; "" means valid
		chk  func(t *testing.T, d Config)
	}{
		{"zero skew clones base", CardSkew{}, "", func(t *testing.T, d Config) {
			base := DefaultConfig(IntraO3)
			base.Devices = 0
			if d != base {
				t.Errorf("zero skew drifted from base:\n got %+v\nwant %+v", d, base)
			}
		}},
		{"half channels", CardSkew{Channels: 2}, "", func(t *testing.T, d Config) {
			if d.Flash.Channels != 2 {
				t.Errorf("channels %d, want 2", d.Flash.Channels)
			}
			if d.Flash.Capacity() >= DefaultConfig(IntraO3).Flash.Capacity() {
				t.Error("halving channels did not shrink capacity")
			}
		}},
		{"superblock skew", CardSkew{PagesPerBlock: 128}, "", func(t *testing.T, d Config) {
			if d.Flash.PagesPerBlock != 128 {
				t.Errorf("pages per block %d, want 128", d.Flash.PagesPerBlock)
			}
		}},
		{"LWP skew re-resolves workers", CardSkew{LWPs: 6}, "", func(t *testing.T, d Config) {
			if d.LWPs != 6 || d.WorkerCount() != 4 {
				t.Errorf("LWPs %d workers %d, want 6 and 4 (paper split)", d.LWPs, d.WorkerCount())
			}
		}},
		{"scratchpad skew", CardSkew{ScratchpadBytes: 2 * units.MB}, "", func(t *testing.T, d Config) {
			if d.ScratchpadBytes != 2*units.MB {
				t.Errorf("scratchpad %d, want 2 MB", d.ScratchpadBytes)
			}
		}},
		{"non-pow2 channels", CardSkew{Channels: 3}, "channels 3 not a positive power of two", nil},
		{"negative channels", CardSkew{Channels: -4}, "power of two", nil},
		{"non-pow2 pages", CardSkew{PagesPerBlock: 100}, "pages-per-block 100", nil},
		{"negative LWPs", CardSkew{LWPs: -1}, "LWPs -1 negative", nil},
		{"non-pow2 scratchpad", CardSkew{ScratchpadBytes: 3 * units.MB}, "scratchpad", nil},
		{"too few LWPs for flashabacus", CardSkew{LWPs: 2}, "workers outside", nil},
	}
	base := DefaultConfig(IntraO3)
	for _, tc := range cases {
		d, err := base.Derive(tc.skew)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
				continue
			}
			if tc.chk != nil {
				tc.chk(t, d)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if !(CardSkew{}).IsZero() || (CardSkew{Channels: 2}).IsZero() {
		t.Error("IsZero misclassifies skews")
	}
}

// A derived card must actually build: the skewed preset card's mapping
// table still fits its halved scratchpad, and the device assembles.
func TestDerivedCardBuilds(t *testing.T) {
	base := DefaultConfig(IntraO3)
	d, err := base.Derive(CardSkew{Channels: 2, LWPs: 6, ScratchpadBytes: 2 * units.MB})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(d); err != nil {
		t.Fatalf("derived card does not build: %v", err)
	}
	// A scratchpad too small for the mapping table fails at build time.
	tiny, err := base.Derive(CardSkew{ScratchpadBytes: 64 * units.KB})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(tiny); err == nil || !strings.Contains(err.Error(), "mapping table") {
		t.Errorf("64 KB scratchpad error %v, want mapping-table rejection", err)
	}
}
