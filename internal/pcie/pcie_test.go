package pcie

import (
	"testing"

	"repro/internal/units"
)

func TestDefaultsMatchTable1(t *testing.T) {
	c := DefaultConfig()
	if c.BW != units.GBps {
		t.Errorf("BW = %d, want 1GB/s (PCIe v2.0 x2)", c.BW)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{BW: 0, BARSize: 1}); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := New(Config{BW: 1, BARSize: 0}); err == nil {
		t.Error("zero BAR accepted")
	}
}

func TestWriteBARTiming(t *testing.T) {
	l, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	end, err := l.WriteBAR(0, units.MB)
	if err != nil {
		t.Fatal(err)
	}
	want := l.Cfg.Latency + l.Cfg.BW.DurationFor(units.MB)
	if end != want {
		t.Errorf("BAR write end = %d, want %d", end, want)
	}
}

func TestWriteBAROverflow(t *testing.T) {
	l, _ := New(DefaultConfig())
	if _, err := l.WriteBAR(0, l.Cfg.BARSize+1); err == nil {
		t.Error("oversized BAR write accepted")
	}
}

func TestTransfersSerialize(t *testing.T) {
	l, _ := New(DefaultConfig())
	e1 := l.Transfer(0, 100*units.MB)
	e2 := l.Transfer(0, 100*units.MB)
	if e2 <= e1 {
		t.Error("link transfers did not serialize")
	}
	if l.Bytes() != 200*units.MB {
		t.Errorf("bytes = %d", l.Bytes())
	}
}

func TestDoorbell(t *testing.T) {
	l, _ := New(DefaultConfig())
	at := l.Doorbell(100)
	if at != 100+l.Cfg.IntLatency {
		t.Errorf("interrupt delivered at %d", at)
	}
	if l.Doorbells() != 1 {
		t.Errorf("doorbells = %d", l.Doorbells())
	}
}
